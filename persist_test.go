package gir_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	gir "github.com/girlib/gir"
)

func TestSaveOpenRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	ds, err := gir.NewDataset(randomPoints(r, 2000, 3))
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{0.5, 0.7, 0.4}
	want, err := ds.TopK(q, 10)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "index.gir")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	reopened, err := gir.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != ds.Len() || reopened.Dim() != ds.Dim() {
		t.Fatalf("metadata mismatch: %d/%d vs %d/%d", reopened.Len(), reopened.Dim(), ds.Len(), ds.Dim())
	}
	got, err := reopened.TopK(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Records {
		if got.Records[i].ID != want.Records[i].ID {
			t.Fatalf("rank %d differs after reopen", i)
		}
	}
	// GIR computation works on the reopened dataset and agrees.
	g1, err := ds.ComputeGIR(want, gir.FP)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := reopened.ComputeGIR(got, gir.FP)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		p := []float64{r.Float64(), r.Float64(), r.Float64()}
		if g1.Contains(p) != g2.Contains(p) {
			t.Fatalf("regions differ after reopen at %v", p)
		}
	}
	// Inserts still work on the reopened tree.
	if err := reopened.Insert(99999, []float64{0.5, 0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != ds.Len()+1 {
		t.Error("insert after reopen did not register")
	}
}

// TestSaveOpenKeepsSpace pins that a dataset snapshot records its query
// space: a simplex dataset reopens as a simplex dataset — validation and
// freshly computed regions included.
func TestSaveOpenKeepsSpace(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	ds, err := gir.NewDatasetInSpace(randomPoints(r, 500, 3), gir.SpaceSimplex)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.gir")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	reopened, err := gir.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Space() != gir.SpaceSimplex {
		t.Fatalf("reopened space = %v, want simplex", reopened.Space())
	}
	if _, err := reopened.TopK([]float64{0.5, 0.7, 0.4}, 5); err == nil {
		t.Error("reopened simplex dataset accepted a non-normalized query")
	}
	q := gir.SpaceSimplex.Normalize([]float64{0.5, 0.7, 0.4})
	res, err := reopened.TopK(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	g, err := reopened.ComputeGIR(res, gir.FP)
	if err != nil {
		t.Fatal(err)
	}
	if g.Space() != gir.SpaceSimplex {
		t.Fatalf("region space = %v, want simplex", g.Space())
	}
}

// TestOnDiskDatasetKeepsSpace pins the disk-backed constructor: the
// space chosen at build time survives the Save + OpenOnDisk round trip
// inside NewDatasetOnDiskInSpace.
func TestOnDiskDatasetKeepsSpace(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	path := filepath.Join(t.TempDir(), "disk.gir")
	ds, err := gir.NewDatasetOnDiskInSpace(randomPoints(r, 300, 3), path, gir.SpaceSimplex)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if ds.Space() != gir.SpaceSimplex {
		t.Fatalf("disk dataset space = %v, want simplex", ds.Space())
	}
	if _, err := ds.TopK([]float64{0.5, 0.7, 0.4}, 3); err == nil {
		t.Error("disk-backed simplex dataset accepted a non-normalized query")
	}
	if _, err := ds.TopK(gir.SpaceSimplex.Normalize([]float64{0.5, 0.7, 0.4}), 3); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage")
	if err := os.WriteFile(path, []byte("not a snapshot at all, definitely"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := gir.Open(path); err == nil {
		t.Error("garbage file accepted")
	}
	if _, err := gir.Open(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestComputeGIRBatch(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	ds, err := gir.NewDataset(randomPoints(r, 3000, 3))
	if err != nil {
		t.Fatal(err)
	}
	items := make([]gir.BatchItem, 12)
	for i := range items {
		items[i] = gir.BatchItem{
			Query: []float64{0.2 + 0.6*r.Float64(), 0.2 + 0.6*r.Float64(), 0.2 + 0.6*r.Float64()},
			K:     3 + i%5,
		}
	}
	items[5].K = -1 // one bad item must not poison the batch

	results := ds.ComputeGIRBatch(items, gir.FP, 4)
	if len(results) != len(items) {
		t.Fatalf("%d results", len(results))
	}
	for i, br := range results {
		if i == 5 {
			if br.Err == nil {
				t.Error("invalid k did not error")
			}
			continue
		}
		if br.Err != nil {
			t.Fatalf("item %d: %v", i, br.Err)
		}
		if len(br.Result.Records) != items[i].K {
			t.Fatalf("item %d: %d records", i, len(br.Result.Records))
		}
		if !br.GIR.Contains(items[i].Query) {
			t.Fatalf("item %d: query outside its GIR", i)
		}
		// Sequential oracle.
		seq, err := ds.TopK(items[i].Query, items[i].K)
		if err != nil {
			t.Fatal(err)
		}
		for j := range seq.Records {
			if seq.Records[j].ID != br.Result.Records[j].ID {
				t.Fatalf("item %d rank %d differs from sequential run", i, j)
			}
		}
	}
	// The records-only copy in batch results must refuse GIR computation
	// cleanly rather than crash.
	if _, err := ds.ComputeGIR(results[0].Result, gir.FP); err == nil {
		t.Error("records-only TopKResult powered a GIR computation")
	}
}

func TestOnDiskDataset(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := randomPoints(r, 1500, 3)
	path := filepath.Join(t.TempDir(), "disk.gir")
	ds, err := gir.NewDatasetOnDisk(pts, path)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	q := []float64{0.6, 0.4, 0.8}
	ds.ResetIOStats()
	res, err := ds.TopK(q, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ds.IOStats().PageReads == 0 {
		t.Error("disk-backed top-k performed no file reads")
	}
	// Results must match the in-memory dataset exactly.
	mem, err := gir.NewDataset(pts)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := mem.TopK(q, 8)
	for i := range want.Records {
		if res.Records[i].ID != want.Records[i].ID {
			t.Fatalf("rank %d differs between disk and memory", i)
		}
	}
	g, err := ds.ComputeGIR(res, gir.FP)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Contains(q) {
		t.Error("query outside its own GIR on disk-backed dataset")
	}
}

// TestOnDiskSidecarLifecycle pins the sidecar contract: concurrent opens
// of one snapshot share a valid existing sidecar instead of clobbering it
// (and each other), Close removes it, a Close racing another live opener
// leaves that opener serving, and a rewritten snapshot never reuses the
// stale sidecar built from the old bytes.
func TestOnDiskSidecarLifecycle(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	pts := randomPoints(r, 800, 3)
	path := filepath.Join(t.TempDir(), "disk.gir")
	ds1, err := gir.NewDatasetOnDisk(pts, path)
	if err != nil {
		t.Fatal(err)
	}
	side := path + ".pages"
	info1, err := os.Stat(side)
	if err != nil {
		t.Fatalf("first open built no sidecar: %v", err)
	}

	// A second opener reuses the sidecar: no rewrite, same file.
	ds2, err := gir.OpenOnDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	info2, err := os.Stat(side)
	if err != nil {
		t.Fatal(err)
	}
	if !info2.ModTime().Equal(info1.ModTime()) || info2.Size() != info1.Size() {
		t.Error("second open rewrote a valid sidecar instead of reusing it")
	}
	q := []float64{0.6, 0.4, 0.8}
	want, err := ds1.TopK(q, 8)
	if err != nil {
		t.Fatal(err)
	}

	// First opener closes: the sidecar is removed, but the still-open
	// second dataset keeps serving from its handle.
	if err := ds1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(side); !os.IsNotExist(err) {
		t.Error("Close did not remove the sidecar")
	}
	got, err := ds2.TopK(q, 8)
	if err != nil {
		t.Fatalf("second opener broken by the first one's Close: %v", err)
	}
	for i := range want.Records {
		if got.Records[i].ID != want.Records[i].ID {
			t.Fatalf("rank %d differs across openers", i)
		}
	}
	if err := ds2.Close(); err != nil {
		t.Fatalf("double sidecar removal must be silent: %v", err)
	}

	// Rewriting the snapshot at the same path invalidates any sidecar
	// left behind: a fresh open must serve the NEW data.
	stale, err := gir.NewDatasetOnDisk(pts, path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crashed process: the sidecar outlives the dataset.
	pts2 := randomPoints(r, 800, 3)
	if _, err := gir.NewDatasetOnDisk(pts2, path); err != nil {
		t.Fatal(err)
	}
	ds3, err := gir.OpenOnDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ds3.Close()
	mem, err := gir.NewDataset(pts2)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := mem.TopK(q, 8)
	if err != nil {
		t.Fatal(err)
	}
	got3, err := ds3.TopK(q, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fresh.Records {
		if got3.Records[i].ID != fresh.Records[i].ID {
			t.Fatalf("open after snapshot rewrite served stale sidecar data at rank %d", i)
		}
	}
	_ = stale
}
