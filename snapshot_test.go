package gir

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/girlib/gir/internal/pager"
)

// bruteScored is one brute-force ranking entry: the exact score a
// snapshot answer must reproduce bit for bit.
type bruteScored struct {
	id    int64
	score float64
}

// bruteTopKScored scores every record of a shadow copy and returns the k
// best in decreasing score order — the reference a pinned snapshot's
// answer must match byte for byte. (bruteTopK in churn_test.go returns
// ids only; the isolation tests also compare scores.)
func bruteTopKScored(shadow map[int64][]float64, q []float64, k int) []bruteScored {
	all := make([]bruteScored, 0, len(shadow))
	for id, p := range shadow {
		s := 0.0
		for i, w := range q {
			s += w * p[i]
		}
		all = append(all, bruteScored{id, s})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].id < all[j].id
	})
	return all[:k]
}

// TestSnapshotIsolation pins a snapshot at version v, advances the
// dataset through N further mutations, and checks the pinned snapshot
// still answers exactly the version-v state — byte-equal to brute force
// over a shadow copy frozen at pin time — while the live dataset answers
// the advanced state. This is the read-side contract of the copy-on-write
// index: a published version is immutable no matter what writers do.
func TestSnapshotIsolation(t *testing.T) {
	r := rand.New(rand.NewSource(411))
	const n, d, k, rounds, mutsPerRound = 400, 3, 7, 5, 40
	points := make([][]float64, n)
	shadow := make(map[int64][]float64, n)
	for i := range points {
		p := []float64{r.Float64(), r.Float64(), r.Float64()}
		points[i] = p
		shadow[int64(i)] = p
	}
	ds, err := NewDataset(points)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([][]float64, 6)
	for i := range queries {
		queries[i] = []float64{0.1 + 0.8*r.Float64(), 0.1 + 0.8*r.Float64(), 0.1 + 0.8*r.Float64()}
	}
	check := func(what string, sn *treeSnap, frozen map[int64][]float64) {
		t.Helper()
		for _, q := range queries {
			res, err := sn.topK(q, k, Linear)
			if err != nil {
				t.Fatalf("%s: %v", what, err)
			}
			want := bruteTopKScored(frozen, q, k)
			for i, rec := range res.Records {
				if rec.ID != want[i].id || rec.Score != want[i].score {
					t.Fatalf("%s: rank %d = record %d score %v, brute force says record %d score %v",
						what, i, rec.ID, rec.Score, want[i].id, want[i].score)
				}
			}
		}
	}

	nextID := int64(n)
	var live []int64 // churn-inserted ids still present
	for round := 0; round < rounds; round++ {
		sn := ds.pinSnap()
		pinnedVersion := sn.version
		frozen := make(map[int64][]float64, len(shadow))
		for id, p := range shadow {
			frozen[id] = p
		}
		for m := 0; m < mutsPerRound; m++ {
			if len(live) > 0 && r.Intn(3) == 0 {
				i := r.Intn(len(live))
				id := live[i]
				if ok, err := ds.Delete(id, shadow[id]); err != nil || !ok {
					t.Fatalf("delete of churn record %d: found=%v err=%v", id, ok, err)
				}
				delete(shadow, id)
				live = append(live[:i], live[i+1:]...)
			} else {
				p := []float64{r.Float64(), r.Float64(), r.Float64()}
				if err := ds.Insert(nextID, p); err != nil {
					t.Fatal(err)
				}
				shadow[nextID] = p
				live = append(live, nextID)
				nextID++
			}
		}
		if sn.version != pinnedVersion {
			t.Fatalf("pinned snapshot's version moved: %d → %d", pinnedVersion, sn.version)
		}
		if got := ds.Version(); got != pinnedVersion+mutsPerRound {
			t.Fatalf("dataset version = %d after %d mutations past %d", got, mutsPerRound, pinnedVersion)
		}
		// The pinned snapshot answers the frozen state; the live dataset
		// answers the advanced one.
		check(fmt.Sprintf("round %d pinned snapshot", round), sn, frozen)
		check(fmt.Sprintf("round %d live dataset", round), ds.pinnedForTest(t), shadow)
		sn.release()
	}
}

// pinnedForTest pins the current snapshot and releases it when the test
// finishes (the isolation test reads the live state through the same
// code path it reads pinned history through).
func (ds *Dataset) pinnedForTest(t *testing.T) *treeSnap {
	sn := ds.pinSnap()
	t.Cleanup(sn.release)
	return sn
}

// TestSnapshotIsolationConcurrent races readers against a live mutator
// under the race detector: each reader pins a snapshot and requires
// repeated identical queries against it to return identical answers for
// as long as the pin is held — any writer mutating a published page, or
// any premature page reuse, breaks the repetition (and the race detector
// flags the access).
func TestSnapshotIsolationConcurrent(t *testing.T) {
	r := rand.New(rand.NewSource(412))
	const n, d, k = 600, 3, 5
	points := make([][]float64, n)
	for i := range points {
		points[i] = []float64{r.Float64(), r.Float64(), r.Float64()}
	}
	ds, err := NewDataset(points)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // mutator: alternating insert/delete churn
		defer wg.Done()
		mr := rand.New(rand.NewSource(413))
		id := int64(n)
		p := make([]float64, d)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := range p {
				p[i] = mr.Float64()
			}
			if err := ds.Insert(id, p); err != nil {
				t.Error(err)
				return
			}
			if ok, err := ds.Delete(id, p); err != nil || !ok {
				t.Errorf("lost record %d: found=%v err=%v", id, ok, err)
				return
			}
			id++
		}
	}()

	const readers = 4
	wg.Add(readers)
	for w := 0; w < readers; w++ {
		go func(seed int64) {
			defer wg.Done()
			qr := rand.New(rand.NewSource(seed))
			for round := 0; round < 60; round++ {
				q := []float64{0.1 + 0.8*qr.Float64(), 0.1 + 0.8*qr.Float64(), 0.1 + 0.8*qr.Float64()}
				sn := ds.pinSnap()
				first, err := sn.topK(q, k, Linear)
				if err != nil {
					t.Error(err)
					sn.release()
					return
				}
				for rep := 0; rep < 5; rep++ {
					again, err := sn.topK(q, k, Linear)
					if err != nil {
						t.Error(err)
						break
					}
					for i := range first.Records {
						if first.Records[i].ID != again.Records[i].ID || first.Records[i].Score != again.Records[i].Score {
							t.Errorf("pinned snapshot v%d changed its answer between reads: rank %d %d/%v → %d/%v",
								sn.version, i, first.Records[i].ID, first.Records[i].Score, again.Records[i].ID, again.Records[i].Score)
						}
					}
				}
				sn.release()
			}
		}(414 + int64(w))
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestSnapshotReclamation asserts the epoch rule: pages superseded by a
// mutation return to the store's freelist only after every snapshot that
// could reference them is released — never while one is pinned — and do
// return (and get reused) afterwards.
func TestSnapshotReclamation(t *testing.T) {
	r := rand.New(rand.NewSource(421))
	const n, d = 500, 3
	points := make([][]float64, n)
	for i := range points {
		points[i] = []float64{r.Float64(), r.Float64(), r.Float64()}
	}
	ds, err := NewDataset(points)
	if err != nil {
		t.Fatal(err)
	}
	mem := ds.store.(*pager.MemStore)

	mutate := func(id int64) {
		t.Helper()
		p := []float64{r.Float64(), r.Float64(), r.Float64()}
		if err := ds.Insert(id, p); err != nil {
			t.Fatal(err)
		}
		if ok, err := ds.Delete(id, p); err != nil || !ok {
			t.Fatalf("lost record %d: found=%v err=%v", id, ok, err)
		}
	}

	// Unpinned steady state: each mutation retires the previous snapshot,
	// and with no pins the next mutation's reclaim pass frees it, so the
	// freelist is non-empty and the store reuses it instead of growing.
	mutate(1 << 30)
	mutate(1<<30 + 1)
	if mem.FreePages() == 0 {
		t.Fatal("no pages reclaimed with no pinned snapshots")
	}
	pagesBefore := mem.NumPages()
	for i := int64(2); i < 12; i++ {
		mutate(1<<30 + i)
	}
	if grown := mem.NumPages() - pagesBefore; grown > 0 {
		t.Errorf("store grew %d pages across 10 mutations despite an active freelist", grown)
	}

	// Pin the current snapshot: every page superseded from here on may be
	// referenced by it (or by versions between it and the head), so the
	// freelist must freeze exactly as it is until the pin is dropped.
	sn := ds.pinSnap()
	freeAtPin := mem.FreePages()
	for i := int64(100); i < 110; i++ {
		mutate(1<<30 + i)
		if got := mem.FreePages(); got > freeAtPin {
			t.Fatalf("freelist grew from %d to %d while a snapshot was pinned — a pinned reader's pages were handed out for reuse", freeAtPin, got)
		}
	}
	if len(ds.retired) == 0 {
		t.Fatal("no retired snapshots accumulated behind the pin")
	}
	sn.release()

	// The release itself frees nothing (readers take no locks); the next
	// mutation's reclaim pass drains the whole retired backlog.
	backlog := len(ds.retired)
	mutate(1 << 31)
	if got := len(ds.retired); got >= backlog {
		t.Errorf("retired backlog %d did not drain after release (now %d)", backlog, got)
	}
	if got := mem.FreePages(); got <= freeAtPin {
		t.Errorf("freelist = %d after release + mutation, want > %d (the backlog's pages)", got, freeAtPin)
	}
}

// TestReaderNotBlockedByFsync is the regression gate for the lock-free
// read path: a writer is held INSIDE its WAL fsync (SyncHook blocks with
// the write-ahead append — and hence the writer mutex — held) and a
// concurrent TopK must still complete. On the previous layout, where
// readers shared the dataset's RWMutex with writers, this times out by
// construction: the reader's RLock queues behind the fsyncing writer.
func TestReaderNotBlockedByFsync(t *testing.T) {
	r := rand.New(rand.NewSource(431))
	const n, d = 300, 3
	points := make([][]float64, n)
	for i := range points {
		points[i] = []float64{r.Float64(), r.Float64(), r.Float64()}
	}
	ds, err := NewDataset(points)
	if err != nil {
		t.Fatal(err)
	}

	var once sync.Once
	entered := make(chan struct{})
	release := make(chan struct{})
	opts := WALOptions{SyncEvery: 1, SyncHook: func() {
		once.Do(func() {
			close(entered)
			<-release
		})
	}}
	if err := ds.EnableWAL(t.TempDir(), opts); err != nil {
		t.Fatal(err)
	}
	defer close(release) // unblock the writer even on failure exits

	insertDone := make(chan error, 1)
	point := []float64{0.5, 0.5, 0.5}
	go func() { insertDone <- ds.Insert(1<<30, point) }()
	<-entered // the writer is now parked inside its fsync

	q := []float64{0.3, 0.4, 0.3}
	topkDone := make(chan error, 1)
	go func() {
		res, err := ds.TopK(q, 5)
		if err == nil && len(res.Records) != 5 {
			err = fmt.Errorf("got %d records, want 5", len(res.Records))
		}
		topkDone <- err
	}()
	select {
	case err := <-topkDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("TopK did not complete while a writer was blocked in its WAL fsync — readers are queueing behind the write path again")
	}
	select {
	case err := <-insertDone:
		t.Fatalf("insert finished before its fsync was released: %v", err)
	default:
	}

	release <- struct{}{} // wake the parked writer (the deferred close handles reruns)
	if err := <-insertDone; err != nil {
		t.Fatal(err)
	}
	if got := ds.Len(); got != n+1 {
		t.Fatalf("Len = %d after the released insert, want %d", got, n+1)
	}
}
