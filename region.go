package gir

import (
	"fmt"
	"time"

	girint "github.com/girlib/gir/internal/gir"
	"github.com/girlib/gir/internal/score"
	"github.com/girlib/gir/internal/topk"
	"github.com/girlib/gir/internal/vec"
	"github.com/girlib/gir/internal/viz"
	"github.com/girlib/gir/internal/volume"
)

// GIR is a computed immutable region. It is immutable and safe for
// concurrent readers.
type GIR struct {
	region *girint.Region
	// Stats describes the computation that produced the region.
	Stats ComputeStats
}

// ComputeStats mirrors the quantities the paper's evaluation plots.
type ComputeStats struct {
	Method         string
	Elapsed        time.Duration // wall-clock time of the GIR computation
	PageReads      int64         // simulated disk reads during it
	SkylineSize    int           // |SL| (SP, CP)
	HullVertices   int           // |SL ∩ CH| (CP)
	StarFacets     int           // facets incident to p_k (FP)
	CriticalCount  int           // critical records (FP)
	RawConstraints int           // half-spaces before reduction
	Constraints    int           // half-spaces in the minimal form
}

// Constraint describes one bounding half-space of the region together with
// the result perturbation its boundary induces (Section 3.2 of the paper).
type Constraint struct {
	// Normal is the half-space normal: the region side satisfies
	// Normal·q' ≥ 0.
	Normal []float64
	// Kind is "reorder" (two adjacent result records swap) or "replace"
	// (a non-result record enters the result).
	Kind string
	// A and B are the record ids involved: A stays ahead of B inside.
	A, B int64
	// Description is a human-readable rendering of the perturbation.
	Description string
}

// ComputeGIR computes the order-sensitive GIR of a top-k result.
// The result is consumed (see TopKResult).
func (ds *Dataset) ComputeGIR(res *TopKResult, m Method) (*GIR, error) {
	return ds.computeGIR(res, m, false)
}

// ComputeGIRStar computes the order-insensitive GIR* (the maximal region
// preserving the result's composition, ignoring order; Section 7.1).
func (ds *Dataset) ComputeGIRStar(res *TopKResult, m Method) (*GIR, error) {
	return ds.computeGIR(res, m, true)
}

func (ds *Dataset) computeGIR(res *TopKResult, m Method, star bool) (*GIR, error) {
	inner, err := res.take()
	if err != nil {
		return nil, err
	}
	sn := ds.pinSnap()
	defer sn.release()
	// The retained BRS heap refers to pages of the version the traversal
	// ran against; Phase 2 must resume into exactly those pages. A pinned
	// snapshot of a LATER version is a different tree, so the mismatch is
	// an error rather than an inconsistent region.
	if res.version != sn.version {
		return nil, fmt.Errorf("gir: the top-k result was computed at dataset version %d but the index is now at %d — rerun TopK", res.version, sn.version)
	}
	return ds.computeGIRSnap(sn, inner, m, star)
}

// computeGIRSnap runs Phase 2 over a retained traversal against a pinned
// snapshot; the caller guarantees sn is the snapshot the traversal ran
// on, so the resumed heap and the tree pages are consistent.
func (ds *Dataset) computeGIRSnap(sn *treeSnap, inner *topk.Result, m Method, star bool) (*GIR, error) {
	readsBefore := ds.store.Stats().Reads
	start := time.Now()
	opts := girint.Options{Method: m.internal(), Domain: sn.space.domain(sn.tree.Dim())}
	var region *girint.Region
	var st *girint.Stats
	var err error
	if star {
		region, st, err = girint.ComputeStar(sn.tree, inner, opts)
	} else {
		region, st, err = girint.Compute(sn.tree, inner, opts)
	}
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	return &GIR{
		region: region,
		Stats: ComputeStats{
			Method:         st.Method,
			Elapsed:        elapsed,
			PageReads:      ds.store.Stats().Reads - readsBefore,
			SkylineSize:    st.SkylineSize,
			HullVertices:   st.HullVertices,
			StarFacets:     st.StarFacets,
			CriticalCount:  st.Critical,
			RawConstraints: st.RawConstraints,
			Constraints:    st.Constraints,
		},
	}, nil
}

// topKFill is the engine's cache-fill bundle: one query's records, region
// and retained repair state, all computed against one dataset version.
type topKFill struct {
	recs    []Record
	g       *GIR // nil with girErr set when only the region build failed
	cand    []topk.Record
	bounds  []vec.Vector
	candOK  bool
	version int64
	girErr  error
}

// topKAndGIR answers a query and computes its GIR against ONE pinned
// snapshot, so no mutation can land between the traversal and the region
// build (the retained BRS heap stays consistent with the pages Phase 2
// resumes into). The repair state is snapshotted between BRS and Phase 2
// — Phase 2 consumes the heap, and FP prunes subtrees from it without
// reading them, so only the pre-Phase-2 state covers the dataset.
func (ds *Dataset) topKAndGIR(q []float64, k int, m Method) (*topKFill, error) {
	sn := ds.pinSnap()
	defer sn.release()
	sc := topk.AcquireScratch(sn.tree)
	defer sc.Release()
	out := &topKFill{version: sn.version}
	res, err := sn.topKWith(sc, q, k, Linear)
	if err != nil {
		return nil, err
	}
	out.recs = make([]Record, len(res.Records))
	for i, r := range res.Records {
		out.recs[i] = Record{ID: r.ID, Attrs: r.Point, Score: r.Score}
	}
	out.cand, out.bounds, out.candOK = retainRepairState(res)
	out.g, out.girErr = ds.computeGIRSnap(sn, res, m, false)
	return out, nil
}

// runGroup validates each member of a fusion group against the pinned
// snapshot and answers the valid ones with one fused traversal
// (topk.BRSGroup). Validation is re-done here even though the engine
// already vetted the batch: the pin may be a later version than the one
// the batch-level check saw, and a racing delete can shrink the dataset
// below a member's k. Results are positionally aligned with qs, nil where
// errs[i] is set.
func runGroup(sn *treeSnap, qs [][]float64, ks []int) ([]*topk.Result, topk.GroupStats, []error) {
	n := len(qs)
	results := make([]*topk.Result, n)
	errs := make([]error, n)
	vqs := make([]vec.Vector, 0, n)
	vks := make([]int, 0, n)
	idx := make([]int, 0, n)
	for i := range qs {
		if err := sn.validate(qs[i], ks[i]); err != nil {
			errs[i] = err
			continue
		}
		vqs = append(vqs, vec.Vector(qs[i]))
		vks = append(vks, ks[i])
		idx = append(idx, i)
	}
	var stats topk.GroupStats
	if len(vqs) > 0 {
		gs := topk.AcquireGroupScratch(sn.tree)
		var res []*topk.Result
		res, stats = topk.BRSGroup(gs, sn.tree, score.Linear{}, vqs, vks)
		gs.Release()
		for j, i := range idx {
			results[i] = res[j]
		}
	}
	return results, stats, errs
}

// topKGroup answers a fusion group of queries under ONE pinned snapshot
// with a shared traversal, for the engine's no-cache batch path. Every
// member's records are byte-identical to a solo Dataset.TopK at the
// pinned version.
func (ds *Dataset) topKGroup(qs [][]float64, ks []int) ([][]Record, topk.GroupStats, []error) {
	sn := ds.pinSnap()
	defer sn.release()
	results, stats, errs := runGroup(sn, qs, ks)
	recs := make([][]Record, len(qs))
	for i, res := range results {
		if res == nil {
			continue
		}
		out := make([]Record, len(res.Records))
		for j, r := range res.Records {
			out[j] = Record{ID: r.ID, Attrs: r.Point, Score: r.Score}
		}
		recs[i] = out
	}
	return recs, stats, errs
}

// topKAndGIRGroup is topKGroup for the cache-fill path: one pinned
// snapshot covers the fused traversal AND every member's GIR build, so
// each fill's retained heap resumes into exactly the pages its traversal
// read — the same single-pin discipline topKAndGIR keeps for one query.
// Fills are positionally aligned with qs, nil where errs[i] is set; a
// member whose region build fails still carries its records (girErr set,
// the insert is skipped).
func (ds *Dataset) topKAndGIRGroup(qs [][]float64, ks []int, m Method) ([]*topKFill, topk.GroupStats, []error) {
	sn := ds.pinSnap()
	defer sn.release()
	results, stats, errs := runGroup(sn, qs, ks)
	fills := make([]*topKFill, len(qs))
	for i, res := range results {
		if res == nil {
			continue
		}
		fill := &topKFill{version: sn.version}
		fill.recs = make([]Record, len(res.Records))
		for j, r := range res.Records {
			fill.recs[j] = Record{ID: r.ID, Attrs: r.Point, Score: r.Score}
		}
		fill.cand, fill.bounds, fill.candOK = retainRepairState(res)
		fill.g, fill.girErr = ds.computeGIRSnap(sn, res, m, false)
		fills[i] = fill
	}
	return fills, stats, errs
}

// Dim returns the query-space dimensionality.
func (g *GIR) Dim() int { return g.region.Dim }

// Space returns the query-space domain the region was computed over.
func (g *GIR) Space() Space { return spaceOfKind(g.region.Space().Kind()) }

// Query returns the original query vector (always inside the region).
func (g *GIR) Query() []float64 { return append([]float64(nil), g.region.Query...) }

// OrderSensitive reports whether this is a GIR (true) or GIR* (false).
func (g *GIR) OrderSensitive() bool { return g.region.OrderSensitive }

// Contains reports whether the query vector q' preserves the top-k result
// — i.e. whether q' lies inside the region.
func (g *GIR) Contains(q []float64) bool {
	return g.region.Contains(vec.Vector(q), 1e-12)
}

// Constraints lists the bounding half-spaces with their perturbation
// attributions.
func (g *GIR) Constraints() []Constraint {
	out := make([]Constraint, len(g.region.Constraints))
	for i, c := range g.region.Constraints {
		out[i] = Constraint{
			Normal:      append([]float64(nil), c.Normal...),
			Kind:        c.Kind.String(),
			A:           c.A,
			B:           c.B,
			Description: c.Describe(),
		}
	}
	return out
}

// Shrink returns a new GIR equal to this one intersected with the
// additional half-spaces {w : normal·w ≥ 0}, with the combined constraint
// set reduced to a minimal representation. The receiver is unchanged.
//
// This is the public face of repair-style region maintenance: when a
// dataset mutation perturbs a cached result in a known pairwise way (a new
// record p displacing the k-th record p_k, say), the post-mutation region
// is the old one shrunk by the new pairwise constraint (p − p_k here) —
// no recomputation needed. Normals must have the region's dimension.
func (g *GIR) Shrink(normals [][]float64) (*GIR, error) {
	added := make([]girint.Constraint, 0, len(normals))
	for i, n := range normals {
		if len(n) != g.region.Dim {
			return nil, fmt.Errorf("gir: shrink normal %d has dimension %d, want %d", i, len(n), g.region.Dim)
		}
		added = append(added, girint.Constraint{
			Normal: append(vec.Vector(nil), n...),
			Kind:   girint.Replace,
			A:      -1,
			B:      -1,
		})
	}
	return &GIR{region: g.region.Shrink(added), Stats: g.Stats}, nil
}

// VolumeOptions tunes VolumeRatio.
type VolumeOptions struct {
	// Samples per Monte-Carlo factor (default 2000). Ignored for d = 2,
	// where the ratio is exact.
	Samples int
	// Seed of the deterministic estimator (default 1).
	Seed int64
}

// VolumeRatio returns vol(GIR)/vol(query space): the probability that a
// uniformly random query vector OF THE ACTIVE SPACE preserves the result
// — the robustness measure of the paper's Figure 14 (the LIK measure of
// [30]). In the simplex space both volumes are taken in the simplex's
// relative (d−1)-dimensional measure, which is what keeps the ratio
// comparable to the paper's plots at higher d. Exact in low dimensions
// (box d=2; simplex d≤3), Monte-Carlo estimated above (internal/volume).
func (g *GIR) VolumeRatio(opt VolumeOptions) (float64, error) {
	return volume.RatioIn(g.region.Space(), g.region.Halfspaces(),
		volume.Options{Samples: opt.Samples, Seed: opt.Seed})
}

// LogVolumeRatio returns ln(VolumeRatio); usable when the ratio underflows
// (high dimensions shrink GIRs exponentially — Figure 14 spans 15 orders
// of magnitude).
func (g *GIR) LogVolumeRatio(opt VolumeOptions) (float64, error) {
	return volume.LogRatioIn(g.region.Space(), g.region.Halfspaces(),
		volume.Options{Samples: opt.Samples, Seed: opt.Seed})
}

// Interval is a per-weight validity range; see LIRs.
type Interval struct {
	Lo, Hi float64
	// LoPerturbation / HiPerturbation describe the result change when the
	// weight reaches each bound. When the query-space domain rather than
	// a result-perturbation constraint is what binds, the text names the
	// active domain's boundary facet (e.g. "query space boundary
	// (w1 = 0)" in the box, "simplex boundary (w1 = 0)" / "simplex
	// vertex (w1 = 1, ...)" in the Σw=1 space).
	LoPerturbation, HiPerturbation string
}

// LIRs returns, for each dimension, the interval within which that weight
// can move without changing the result: the slide-bar bounds of the
// paper's Figure 1, equal to the local immutable regions of [24], derived
// by interactive projection (Section 7.3). In the box space the other
// weights stay fixed; in the simplex space the slide rebalances — the
// other weights keep their relative proportions so the vector stays
// sum-normalized (see internal/viz).
func (g *GIR) LIRs() []Interval {
	ivs := viz.LIRs(g.region, g.region.Query)
	out := make([]Interval, len(ivs))
	for i, iv := range ivs {
		out[i] = Interval{
			Lo: iv.Lo, Hi: iv.Hi,
			LoPerturbation: g.describeBound(iv.LoConstraint, iv.LoBoundary),
			HiPerturbation: g.describeBound(iv.HiConstraint, iv.HiBoundary),
		}
	}
	return out
}

func (g *GIR) describeBound(ci int, boundary string) string {
	if ci < 0 {
		return boundary
	}
	return g.region.Constraints[ci].Describe()
}

// MAH returns a maximal axis-parallel hyper-rectangle [lo, hi] containing
// the query and inscribed in the region's CONE clipped to [0,1]^d
// (Section 7.3). In the box space that is the region itself: bounds that
// stay valid under simultaneous independent readjustment of all weights.
// In the simplex space the region is the cone's Σw=1 slice, so the box
// is the envelope of valid rebalanced settings: a point of [lo, hi] is a
// preserved query iff it is also sum-normalized (box ∩ {Σw=1} ⊆ region);
// sample with Space.Normalize or use LIRs for per-weight bounds.
func (g *GIR) MAH() (lo, hi []float64) {
	l, h := viz.MAH(g.region, g.region.Query)
	return l, h
}

// RadarBounds returns the inner and outer tipping-point marks of the
// radar-chart visualization (Figure 1(b)).
func (g *GIR) RadarBounds() (inner, outer []float64) {
	in, out := viz.RadarBounds(g.region, g.region.Query)
	return in, out
}

// String summarizes the region.
func (g *GIR) String() string {
	kind := "GIR"
	if !g.region.OrderSensitive {
		kind = "GIR*"
	}
	return fmt.Sprintf("%s{d=%d, constraints=%d, method=%s}",
		kind, g.region.Dim, len(g.region.Constraints), g.Stats.Method)
}

// internalRegion exposes the region to sibling root-package files (cache).
func (g *GIR) internalRegion() *girint.Region { return g.region }
