// Result caching: the paper's third application (Section 1). Top-k results
// are cached together with their GIRs; a new query whose weight vector
// falls inside a cached region is answered without touching the index at
// all. Users of a recommendation service tweak weights in small steps, so
// consecutive query vectors cluster — exactly the workload where GIR
// caching shines.
//
// This example simulates sessions of users nudging their preference
// weights, and reports hit rates and saved disk reads.
//
// Run with: go run ./examples/caching
package main

import (
	"fmt"
	"log"
	"math/rand"

	gir "github.com/girlib/gir"
	"github.com/girlib/gir/internal/datagen"
)

func main() {
	const (
		n        = 100000
		d        = 4
		k        = 10
		sessions = 40
		steps    = 12 // weight tweaks per session
	)
	pts := datagen.Independent(n, d, 3)
	raw := make([][]float64, len(pts))
	for i, p := range pts {
		raw[i] = p
	}
	ds, err := gir.NewDataset(raw)
	if err != nil {
		log.Fatal(err)
	}
	cache := gir.NewCache(64)
	r := rand.New(rand.NewSource(7))

	var served, computed, girBuilt int
	var serveReads, girReads int64
	for s := 0; s < sessions; s++ {
		// Each session starts from a fresh preference vector…
		q := make([]float64, d)
		for j := range q {
			q[j] = 0.15 + 0.7*r.Float64()
		}
		for step := 0; step < steps; step++ {
			if hit, ok := cache.Lookup(q, k); ok && hit.Complete {
				served++
			} else {
				ds.ResetIOStats()
				res, err := ds.TopK(q, k)
				if err != nil {
					log.Fatal(err)
				}
				computed++
				serveReads += ds.IOStats().PageReads
				// Cache the result keyed by its GIR. This is a one-time
				// cost per distinct result that amortizes over later hits
				// (a production system would build it asynchronously).
				ds.ResetIOStats()
				g, err := ds.ComputeGIR(res, gir.FP)
				if err != nil {
					log.Fatal(err)
				}
				girBuilt++
				girReads += ds.IOStats().PageReads
				cache.Put(g, res) // Put needs only the records; res is fine
			}
			// …then nudges one weight slightly, as slide-bar users do.
			j := r.Intn(d)
			q[j] = clamp(q[j] + 0.015*r.NormFloat64())
		}
	}

	// Baseline: the same workload with no cache.
	ds.ResetIOStats()
	r = rand.New(rand.NewSource(7))
	for s := 0; s < sessions; s++ {
		q := make([]float64, d)
		for j := range q {
			q[j] = 0.15 + 0.7*r.Float64()
		}
		for step := 0; step < steps; step++ {
			if _, err := ds.TopK(q, k); err != nil {
				log.Fatal(err)
			}
			j := r.Intn(d)
			q[j] = clamp(q[j] + 0.015*r.NormFloat64())
		}
	}
	readsNoCache := ds.IOStats().PageReads

	total := sessions * steps
	fmt.Printf("workload: %d sessions × %d weight tweaks = %d top-%d queries over %d records\n",
		sessions, steps, total, k, n)
	fmt.Printf("\nwith GIR cache:  %4d served from cache (%.0f%%), %d computed (+%d GIR builds)\n",
		served, 100*float64(served)/float64(total), computed, girBuilt)
	fmt.Printf("query-time reads: %5d with cache vs %6d without (%.1fx fewer)\n",
		serveReads, readsNoCache, float64(readsNoCache)/float64(serveReads))
	fmt.Printf("one-time GIR-build reads: %d (amortized over %d cache hits)\n",
		girReads, served)
	hits, partial, misses := cache.Stats()
	fmt.Printf("cache stats:     %d exact hits, %d partial, %d misses, %d entries\n",
		hits, partial, misses, cache.Len())
	fmt.Println("\nEvery cached answer is exact: the GIR guarantees the served list is")
	fmt.Println("identical — composition and order — to what BRS would have returned.")
}

func clamp(x float64) float64 {
	if x < 0.01 {
		return 0.01
	}
	if x > 1 {
		return 1
	}
	return x
}
