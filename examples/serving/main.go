// Concurrent serving: the paper's caching application at production
// shape. An Engine wraps the dataset and a sharded GIR cache and serves
// batches of top-k queries from a pool of workers: cache hits are
// answered without touching the index, identical in-flight misses are
// collapsed into a single computation, and every fresh result is
// inserted back into the cache keyed by its immutable region.
//
// The workload is a Zipf-distributed stream — a few popular preference
// vectors dominate, with a long tail — plus slight jitter, standing in
// for users nudging their weights. That is exactly the regime the GIR
// guarantees make cacheable: any query inside a cached region gets the
// byte-exact result the index would have produced.
//
// Run with: go run ./examples/serving
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	gir "github.com/girlib/gir"
	"github.com/girlib/gir/internal/datagen"
	"github.com/girlib/gir/internal/engine"
)

func main() {
	const (
		n        = 100000
		d        = 4
		distinct = 48   // distinct preference vectors in the pool
		stream   = 3000 // queries served
		zipfS    = 1.3  // popularity skew
		jitter   = 0.001
		batch    = 64
	)
	pts := datagen.Independent(n, d, 3)
	raw := make([][]float64, len(pts))
	for i, p := range pts {
		raw[i] = p
	}
	ds, err := gir.NewDataset(raw)
	if err != nil {
		log.Fatal(err)
	}

	// The query stream: Zipf-popular vectors, k between 5 and 20, with
	// occasional tiny nudges that usually stay inside the popular
	// query's immutable region.
	st := engine.NewStream(11, d, distinct, zipfS, 5, 20, jitter)
	qs, ks := st.Draw(stream)
	queries := make([]gir.Query, stream)
	for i := range queries {
		queries[i] = gir.Query{Vector: qs[i], K: ks[i]}
	}

	// Baseline: compute every query, no cache (still fanned out).
	base := gir.NewEngine(ds, gir.EngineOptions{CacheCapacity: -1})
	defer base.Close()
	ds.ResetIOStats()
	start := time.Now()
	serve(base, queries, batch)
	baseElapsed := time.Since(start)
	baseReads := ds.IOStats().PageReads

	// The serving engine: sharded GIR cache, FP cache fill.
	e := gir.NewEngine(ds, gir.EngineOptions{CacheCapacity: 2 * distinct})
	defer e.Close()
	ds.ResetIOStats()
	start = time.Now()
	serve(e, queries, batch) // cold: misses also build their GIR
	coldElapsed := time.Since(start)
	coldReads := ds.IOStats().PageReads

	ds.ResetIOStats()
	start = time.Now()
	serve(e, queries, batch) // warm: steady-state serving
	warmElapsed := time.Since(start)
	warmReads := ds.IOStats().PageReads

	stats := e.Stats()
	total := stats.CacheHits + stats.PartialHits + stats.Misses
	fmt.Printf("workload: %d top-k queries over %d records (%d distinct vectors, zipf %.1f), %d workers\n\n",
		stream, n, distinct, zipfS, runtime.GOMAXPROCS(0))
	fmt.Printf("no cache:    %8v  %7d page reads\n", baseElapsed.Round(time.Millisecond), baseReads)
	fmt.Printf("cache, cold: %8v  %7d page reads   (misses also build their GIR — the one-time fill cost)\n",
		coldElapsed.Round(time.Millisecond), coldReads)
	fmt.Printf("cache, warm: %8v  %7d page reads   (%.0fx the uncached throughput)\n\n",
		warmElapsed.Round(time.Millisecond), warmReads,
		float64(baseElapsed)/float64(warmElapsed))
	fmt.Printf("engine stats: %d hits (%.1f%%), %d partial, %d misses, %d deduplicated, %d computed\n",
		stats.CacheHits, 100*float64(stats.CacheHits)/float64(total),
		stats.PartialHits, stats.Misses, stats.Deduped, stats.Computed)
	fmt.Printf("cache: %d entries in %d shards\n\n", e.Cache().Len(), e.Cache().Shards())
	fmt.Println("every answer — hit or miss — is byte-identical to running the query")
	fmt.Println("against the index: the immutable region guarantees it.")
}

func serve(e *gir.Engine, queries []gir.Query, batch int) {
	for lo := 0; lo < len(queries); lo += batch {
		hi := lo + batch
		if hi > len(queries) {
			hi = len(queries)
		}
		for _, res := range e.BatchTopK(queries[lo:hi]) {
			if res.Err != nil {
				log.Fatal(res.Err)
			}
		}
	}
}
