// Interactive exploration: the paper's weight-readjustment application
// (Sections 1, 3.2 and 7.3). The GIR's bounding half-spaces tell a UI, for
// each direction of movement, exactly which result change happens first.
// This example walks the query vector around the region and verifies each
// prediction against the index:
//
//  1. moves strictly inside the GIR leave the top-k untouched (no blind,
//     useless readjustments),
//  2. crossing the boundary of a "reorder" constraint swaps exactly the
//     two attributed records,
//  3. crossing a "replace" constraint brings the attributed outsider in.
//
// Run with: go run ./examples/exploration
package main

import (
	"fmt"
	"log"
	"math/rand"

	gir "github.com/girlib/gir"
	"github.com/girlib/gir/internal/datagen"
)

func main() {
	const n, d, k = 50000, 3, 8
	pts := datagen.Independent(n, d, 11)
	raw := make([][]float64, len(pts))
	for i, p := range pts {
		raw[i] = p
	}
	ds, err := gir.NewDataset(raw)
	if err != nil {
		log.Fatal(err)
	}
	q := []float64{0.55, 0.70, 0.40}
	res, err := ds.TopK(q, k)
	if err != nil {
		log.Fatal(err)
	}
	ids := func(recs []gir.Record) []int64 {
		out := make([]int64, len(recs))
		for i, r := range recs {
			out[i] = r.ID
		}
		return out
	}
	fmt.Printf("query %v, top-%d = %v\n", q, k, ids(res.Records))

	g, err := ds.ComputeGIR(res, gir.FP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GIR has %d bounding conditions\n\n", g.Stats.Constraints)

	// 1. Random in-region moves: result provably unchanged; verify anyway.
	r := rand.New(rand.NewSource(5))
	fmt.Println("― moves inside the GIR (result must be identical) ―")
	checked := 0
	for trial := 0; trial < 100000 && checked < 5; trial++ {
		p := []float64{q[0] + 0.2*r.NormFloat64(), q[1] + 0.2*r.NormFloat64(), q[2] + 0.2*r.NormFloat64()}
		if !inBox(p) || !g.Contains(p) {
			continue
		}
		checked++
		fresh, err := ds.TopK(p, k)
		if err != nil {
			log.Fatal(err)
		}
		same := equalIDs(ids(fresh.Records), ids(res.Records))
		fmt.Printf("  q' = %s → unchanged: %v\n", fmtVec(p), same)
		if !same {
			log.Fatal("GIR violated — this must never print")
		}
	}

	// 2 & 3. Boundary crossings: the attributed perturbation must occur.
	fmt.Println("\n― crossing each bounding condition (predicted change must occur) ―")
	for ci, c := range g.Constraints() {
		qOut, ok := crossOne(g, ci, q)
		if !ok {
			continue // crossing would leave the box or violate others
		}
		fresh, err := ds.TopK(qOut, k)
		if err != nil {
			log.Fatal(err)
		}
		got := ids(fresh.Records)
		want := predict(ids(res.Records), c)
		status := "CONFIRMED"
		if !equalIDs(got, want) {
			status = "mismatch (numerical tie at the boundary)"
		}
		fmt.Printf("  crossing %-52s → %s\n", c.Description, status)
	}
}

// crossOne steps just beyond constraint ci while staying inside all
// others and the box; ok=false if impossible from q.
func crossOne(g *gir.GIR, ci int, q []float64) ([]float64, bool) {
	cons := g.Constraints()
	c := cons[ci]
	var nn, slack float64
	for i := range q {
		nn += c.Normal[i] * c.Normal[i]
		slack += c.Normal[i] * q[i]
	}
	if nn == 0 {
		return nil, false
	}
	t := slack / nn * (1 + 1e-6)
	out := make([]float64, len(q))
	for i := range q {
		out[i] = q[i] - t*c.Normal[i]
		if out[i] <= 0 || out[i] > 1 {
			return nil, false
		}
	}
	for cj, c2 := range cons {
		if cj == ci {
			continue
		}
		var s float64
		for i := range out {
			s += c2.Normal[i] * out[i]
		}
		if s < 0 {
			return nil, false
		}
	}
	return out, true
}

// predict applies Section 3.2's perturbation semantics.
func predict(res []int64, c gir.Constraint) []int64 {
	out := append([]int64(nil), res...)
	if c.Kind == "reorder" {
		for i := 0; i+1 < len(out); i++ {
			if out[i] == c.A && out[i+1] == c.B {
				out[i], out[i+1] = out[i+1], out[i]
				return out
			}
		}
		return out
	}
	out[len(out)-1] = c.B // the outsider replaces the k-th record
	return out
}

func equalIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func inBox(p []float64) bool {
	for _, x := range p {
		if x <= 0 || x > 1 {
			return false
		}
	}
	return true
}

func fmtVec(v []float64) string {
	s := "("
	for i, x := range v {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%.3f", x)
	}
	return s + ")"
}
