// Quickstart: the paper's restaurant-recommendation scenario (Section 1).
//
// A rating site stores, for each restaurant, average user ratings on four
// factors — food quality, ambience, value for money, service. A user asks
// for a top-10 recommendation with her own weights. We answer the query,
// compute its Global Immutable Region, and print the Figure-1 interface
// artifacts: slide-bar bounds per weight with "what changes at each
// tipping point", the radar-chart polygons, and the robustness score.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	gir "github.com/girlib/gir"
)

var factors = []string{"Food quality", "Ambience", "Value", "Service"}

func main() {
	// 5000 synthetic restaurants; ratings correlate mildly (good kitchens
	// tend to have good service), which is realistic for rating sites.
	r := rand.New(rand.NewSource(2014))
	restaurants := make([][]float64, 5000)
	for i := range restaurants {
		base := 0.2 + 0.6*r.Float64()
		rec := make([]float64, 4)
		for j := range rec {
			rec[j] = clamp(base + 0.25*r.NormFloat64())
		}
		restaurants[i] = rec
	}
	ds, err := gir.NewDataset(restaurants)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's example weights (60, 50, 60, 70 on a 0–100 scale).
	q := []float64{0.60, 0.50, 0.60, 0.70}
	res, err := ds.TopK(q, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Top-10 restaurants for weights (60, 50, 60, 70):")
	for i, rec := range res.Records {
		fmt.Printf("  %2d. restaurant #%-5d  score %.3f\n", i+1, rec.ID, rec.Score)
	}

	g, err := ds.ComputeGIR(res, gir.FP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGIR computed with FP in %v: %d bounding conditions "+
		"(from %d critical restaurants out of %d non-results)\n",
		g.Stats.Elapsed.Round(1000), g.Stats.Constraints, g.Stats.CriticalCount, ds.Len()-10)

	fmt.Println("\nSlide-bar bounds (Figure 1a): each weight may move in its range")
	fmt.Println("without changing the recommendation; at a bound, the shown change occurs.")
	for i, iv := range g.LIRs() {
		fmt.Printf("\n  %-13s %s\n", factors[i], slider(iv.Lo, iv.Hi, q[i]))
		fmt.Printf("     range [%2.0f, %2.0f] around %2.0f\n", iv.Lo*100, iv.Hi*100, q[i]*100)
		fmt.Printf("     at %2.0f: %s\n", iv.Lo*100, iv.LoPerturbation)
		fmt.Printf("     at %2.0f: %s\n", iv.Hi*100, iv.HiPerturbation)
	}

	inner, outer := g.RadarBounds()
	fmt.Println("\nRadar-chart tipping points (Figure 1b):")
	fmt.Printf("  inner polygon: %v\n", scale100(inner))
	fmt.Printf("  outer polygon: %v\n", scale100(outer))

	lo, hi := g.MAH()
	fmt.Println("\nSimultaneous-readjustment bounds (MAH): all four weights may move")
	fmt.Println("anywhere inside these ranges at the same time:")
	for i := range lo {
		fmt.Printf("  %-13s [%2.0f, %2.0f]\n", factors[i], lo[i]*100, hi[i]*100)
	}

	if ratio, err := g.VolumeRatio(gir.VolumeOptions{Samples: 2000}); err == nil {
		fmt.Printf("\nRobustness: the recommendation survives %.1f%% of all possible\n", 100*ratio)
		fmt.Println("weight settings — the sensitivity measure of the paper's Figure 14.")
	}
}

// slider renders a text slide-bar with lower/upper marks and the current
// thumb, like Figure 1(a).
func slider(lo, hi, cur float64) string {
	const width = 40
	bar := []byte(strings.Repeat("-", width+1))
	set := func(x float64, c byte) {
		i := int(x*width + 0.5)
		if i < 0 {
			i = 0
		}
		if i > width {
			i = width
		}
		bar[i] = c
	}
	set(lo, '[')
	set(hi, ']')
	set(cur, 'O')
	return "0 " + string(bar) + " 100"
}

func scale100(v []float64) []int {
	out := make([]int, len(v))
	for i, x := range v {
		out[i] = int(x*100 + 0.5)
	}
	return out
}

func clamp(x float64) float64 {
	if x < 0.01 {
		return 0.01
	}
	if x > 1 {
		return 1
	}
	return x
}
