// Sensitivity analysis: the paper's second application (Sections 1 and 8,
// Figure 14). Effective decision support pairs a recommendation with a
// measure of its robustness: the ratio of the GIR's volume to the query
// space's — the probability that a random weight setting yields the same
// answer.
//
// This example scores the robustness of top-k results on the HOTEL
// surrogate across k, flags the most sensitive result, and shows how the
// order-insensitive GIR* always reports the result as more (or equally)
// robust — order is the fragile part. It also measures every region in
// BOTH query spaces — the unit box and the paper's Σw=1 simplex — side
// by side: the simplex ratio is a relative measure one dimension lower
// (the probability a random SUM-NORMALIZED preference preserves the
// result), the convention the paper's Figure 14 plots, so the two
// columns quantify how much of a region's fragility is the extra box
// dimension versus genuine order sensitivity.
//
// Run with: go run ./examples/sensitivity
package main

import (
	"fmt"
	"log"
	"math"

	gir "github.com/girlib/gir"
	"github.com/girlib/gir/internal/datagen"
)

func main() {
	const n = 50000 // HOTEL surrogate, trimmed for a quick demo
	pts := datagen.Hotel(n, 1)
	raw := make([][]float64, len(pts))
	for i, p := range pts {
		raw[i] = p
	}
	ds, err := gir.NewDataset(raw)
	if err != nil {
		log.Fatal(err)
	}
	// The same data served under the paper's sum-normalized convention;
	// the equivalent simplex query is the normalized weight vector
	// (linear ranking is scale-invariant, so both rank identically).
	dsSimplex, err := gir.NewDatasetInSpace(raw, gir.SpaceSimplex)
	if err != nil {
		log.Fatal(err)
	}

	q := []float64{0.8, 0.6, 0.3, 0.7} // stars, value, rooms, facilities
	qn := gir.SpaceSimplex.Normalize(q)
	fmt.Printf("HOTEL surrogate (n=%d), query weights %v (simplex: %.3f)\n", n, q, qn)
	fmt.Println("\nRobustness vs result size (Figure 14(b) shape: larger k ⇒ more")
	fmt.Println("order conditions ⇒ smaller GIR ⇒ more sensitive result), in both")
	fmt.Println("query spaces — the simplex columns are the paper's convention:")
	fmt.Println("the chance a random SUM-NORMALIZED preference preserves the result:")
	fmt.Printf("%6s %16s %16s %18s %18s\n", "k", "log10 box GIR", "log10 box GIR*", "log10 simplex GIR", "log10 simplex GIR*")

	logRatio := func(d *gir.Dataset, w []float64, k int, star bool) float64 {
		res, err := d.TopK(w, k)
		if err != nil {
			log.Fatal(err)
		}
		var g *gir.GIR
		if star {
			g, err = d.ComputeGIRStar(res, gir.FP)
		} else {
			g, err = d.ComputeGIR(res, gir.FP)
		}
		if err != nil {
			log.Fatal(err)
		}
		lg, err := g.LogVolumeRatio(gir.VolumeOptions{Samples: 2000})
		if err != nil {
			log.Fatal(err)
		}
		return lg / math.Ln10
	}

	var mostSensitiveK int
	worst := math.Inf(1)
	for _, k := range []int{5, 10, 20, 50, 100} {
		l10 := logRatio(ds, q, k, false)
		l10s := logRatio(ds, q, k, true)
		s10 := logRatio(dsSimplex, qn, k, false)
		s10s := logRatio(dsSimplex, qn, k, true)
		fmt.Printf("%6d %16.2f %16.2f %18.2f %18.2f\n", k, l10, l10s, s10, s10s)
		if l10 < worst {
			worst, mostSensitiveK = l10, k
		}
		if l10s < l10-0.5 {
			fmt.Printf("       warning: GIR* smaller than GIR at k=%d — estimator noise\n", k)
		}
	}

	fmt.Printf("\nThe k=%d result is the most sensitive (box volume ratio 1e%.1f).\n", mostSensitiveK, worst)
	fmt.Println("A UI can use this to trigger deeper deliberation for fragile answers")
	fmt.Println("and display the LIR bounds from the quickstart example as guidance.")

	// Per-constraint diagnosis: which single change is the result closest
	// to? That is the binding constraint at the query vector.
	res, _ := ds.TopK(q, 10)
	g, _ := ds.ComputeGIR(res, gir.FP)
	cons := g.Constraints()
	if len(cons) > 0 {
		fmt.Println("\nNearest result changes (the first few bounding conditions):")
		for i, c := range cons {
			if i >= 3 {
				break
			}
			fmt.Printf("  - %s\n", c.Description)
		}
	}
}
