// Sensitivity analysis: the paper's second application (Sections 1 and 8,
// Figure 14). Effective decision support pairs a recommendation with a
// measure of its robustness: the ratio of the GIR's volume to the query
// space's — the probability that a random weight setting yields the same
// answer.
//
// This example scores the robustness of top-k results on the HOTEL
// surrogate across k, flags the most sensitive result, and shows how the
// order-insensitive GIR* always reports the result as more (or equally)
// robust — order is the fragile part.
//
// Run with: go run ./examples/sensitivity
package main

import (
	"fmt"
	"log"
	"math"

	gir "github.com/girlib/gir"
	"github.com/girlib/gir/internal/datagen"
)

func main() {
	const n = 50000 // HOTEL surrogate, trimmed for a quick demo
	pts := datagen.Hotel(n, 1)
	raw := make([][]float64, len(pts))
	for i, p := range pts {
		raw[i] = p
	}
	ds, err := gir.NewDataset(raw)
	if err != nil {
		log.Fatal(err)
	}

	q := []float64{0.8, 0.6, 0.3, 0.7} // stars, value, rooms, facilities
	fmt.Printf("HOTEL surrogate (n=%d), query weights %v\n", n, q)
	fmt.Println("\nRobustness vs result size (Figure 14(b) shape: larger k ⇒ more")
	fmt.Println("order conditions ⇒ smaller GIR ⇒ more sensitive result):")
	fmt.Printf("%6s %22s %22s\n", "k", "log10 vol(GIR)", "log10 vol(GIR*)")

	var mostSensitiveK int
	worst := math.Inf(1)
	for _, k := range []int{5, 10, 20, 50, 100} {
		res, err := ds.TopK(q, k)
		if err != nil {
			log.Fatal(err)
		}
		g, err := ds.ComputeGIR(res, gir.FP)
		if err != nil {
			log.Fatal(err)
		}
		lg, err := g.LogVolumeRatio(gir.VolumeOptions{Samples: 2000})
		if err != nil {
			log.Fatal(err)
		}
		res2, _ := ds.TopK(q, k)
		gStar, err := ds.ComputeGIRStar(res2, gir.FP)
		if err != nil {
			log.Fatal(err)
		}
		lgStar, err := gStar.LogVolumeRatio(gir.VolumeOptions{Samples: 2000})
		if err != nil {
			log.Fatal(err)
		}
		l10, l10s := lg/math.Ln10, lgStar/math.Ln10
		fmt.Printf("%6d %22.2f %22.2f\n", k, l10, l10s)
		if l10 < worst {
			worst, mostSensitiveK = l10, k
		}
		if l10s < l10-0.5 {
			fmt.Printf("       warning: GIR* smaller than GIR at k=%d — estimator noise\n", k)
		}
	}

	fmt.Printf("\nThe k=%d result is the most sensitive (volume ratio 1e%.1f).\n", mostSensitiveK, worst)
	fmt.Println("A UI can use this to trigger deeper deliberation for fragile answers")
	fmt.Println("and display the LIR bounds from the quickstart example as guidance.")

	// Per-constraint diagnosis: which single change is the result closest
	// to? That is the binding constraint at the query vector.
	res, _ := ds.TopK(q, 10)
	g, _ := ds.ComputeGIR(res, gir.FP)
	cons := g.Constraints()
	if len(cons) > 0 {
		fmt.Println("\nNearest result changes (the first few bounding conditions):")
		for i, c := range cons {
			if i >= 3 {
				break
			}
			fmt.Printf("  - %s\n", c.Description)
		}
	}
}
