// Serving under churn: what fine-grained cache invalidation buys.
//
// The GIR is a certificate of exactly where a cached top-k result stays
// valid, and that certificate also answers the dynamic question: which
// cache entries does a write actually endanger? Deleting a record only
// invalidates entries whose result contains it; inserting a record only
// invalidates entries whose region admits some weight vector that scores
// the newcomer above their k-th result (a small LP, usually short-cut by
// closed-form filters). Every other entry keeps serving.
//
// This program runs the same Zipf query stream twice under a 5% write mix:
// once with the Engine's event-driven fine-grained invalidation, once in
// FlushOnWrite mode — the blunt alternative that drops the whole cache on
// every write — and prints the hit rate each retains. Every answer in both
// runs is still byte-identical to a fresh computation; invalidation only
// decides what must be recomputed.
//
// Run with: go run ./examples/churn
package main

import (
	"fmt"
	"log"
	"time"

	gir "github.com/girlib/gir"
	"github.com/girlib/gir/internal/datagen"
	"github.com/girlib/gir/internal/engine"
)

const (
	n        = 50000
	d        = 4
	distinct = 48   // distinct preference vectors in the pool
	stream   = 2000 // operations (queries + writes)
	writeMix = 0.05 // fraction of operations that are Insert/Delete
	zipfS    = 1.3
)

func main() {
	pts := datagen.Independent(n, d, 5)
	raw := make([][]float64, len(pts))
	for i, p := range pts {
		raw[i] = p
	}
	ops, queries, writes := engine.NewChurnWorkload(23, d, distinct, zipfS, 0.001, stream, writeMix, 1, 5, 20)
	fmt.Printf("workload: %d operations over %d records — %d top-k queries, %d writes (%.1f%%)\n\n",
		stream, n, queries, writes, 100*float64(writes)/float64(stream))

	fine := run("fine-grained invalidation", raw, ops, false)
	flush := run("global flush per write  ", raw, ops, true)

	fmt.Printf("\nwith %.0f%% writes, fine-grained invalidation served %.1f%% of queries from\n",
		100*writeMix, 100*fine)
	fmt.Printf("the cache; flushing the world on every write managed %.1f%%. The regions\n", 100*flush)
	fmt.Println("themselves told us which entries each write could perturb — the rest kept serving.")
}

// run replays the operation stream against a fresh dataset + engine and
// returns the warm hit rate. flushOnWrite selects the coarse strategy.
func run(name string, raw [][]float64, ops []engine.ChurnOp, flushOnWrite bool) float64 {
	ds, err := gir.NewDataset(raw)
	if err != nil {
		log.Fatal(err)
	}
	e := gir.NewEngine(ds, gir.EngineOptions{CacheCapacity: 2 * distinct, FlushOnWrite: flushOnWrite})
	defer e.Close()
	for _, o := range ops { // warm the cache with the query side
		if !o.Write {
			if res := e.TopK(o.Query, o.K); res.Err != nil {
				log.Fatal(res.Err)
			}
		}
	}
	warm := e.Stats()
	start := time.Now()
	for _, o := range ops {
		switch {
		case o.Write && o.Insert:
			if err := ds.Insert(o.ID, o.Point); err != nil {
				log.Fatal(err)
			}
		case o.Write:
			if _, err := ds.Delete(o.ID, o.Point); err != nil {
				log.Fatal(err)
			}
		default:
			if res := e.TopK(o.Query, o.K); res.Err != nil {
				log.Fatal(res.Err)
			}
		}
	}
	elapsed := time.Since(start)
	e.Quiesce() // settle the drainer so the eviction counters are final
	st := e.Stats()
	hits := st.CacheHits - warm.CacheHits
	lookups := hits + st.PartialHits - warm.PartialHits + st.Misses - warm.Misses
	rate := float64(hits) / float64(lookups)
	fmt.Printf("%s  %8v   %5d hits / %5d lookups (%.1f%%), %d entries evicted, %d fence vetoes\n",
		name, elapsed.Round(time.Millisecond), hits, lookups, 100*rate,
		st.Invalidated-warm.Invalidated, st.Fenced-warm.Fenced)
	return rate
}
