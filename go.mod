module github.com/girlib/gir

go 1.22
