package gir_test

import (
	"math/rand"
	"testing"

	gir "github.com/girlib/gir"
)

// This file is the property-based harness for the paper's Theorem-level
// invariant (Definition 1 / Section 3): every query vector inside a
// computed GIR returns EXACTLY the region's top-k result — identical
// composition and order for the order-sensitive GIR, identical composition
// for the order-insensitive GIR*. The serving stack (Cache, Engine) is
// sound only because of this property, so it is pinned directly here for
// every Method variant over random datasets and random queries.

// sampleInside draws count query vectors strictly inside g, domain-aware:
// in the box, points of the MAH box (inscribed in the region by
// construction) and jittered copies of the original query; in the
// simplex, rebalancing interpolations toward random vertices and
// jittered-then-renormalized queries — both stay on Σw=1 by construction.
// Every candidate still passes through Contains before use.
func sampleInside(r *rand.Rand, g *gir.GIR, count int) [][]float64 {
	lo, hi := g.MAH()
	q0 := g.Query()
	simplex := g.Space() == gir.SpaceSimplex
	out := [][]float64{q0}
	for attempts := 0; len(out) < count && attempts < count*200; attempts++ {
		q := make([]float64, g.Dim())
		switch {
		case simplex && attempts%2 == 0:
			// Shift a little preference mass toward one attribute,
			// rebalancing the rest proportionally (stays sum-normalized).
			t := 0.15 * r.Float64()
			i := r.Intn(len(q))
			for j := range q {
				q[j] = (1 - t) * q0[j]
			}
			q[i] += t
		case !simplex && attempts%2 == 0:
			for j := range q {
				q[j] = lo[j] + (hi[j]-lo[j])*r.Float64()
			}
		default:
			for j := range q {
				q[j] = q0[j] * (1 + 0.03*r.NormFloat64())
				if q[j] < 0 {
					q[j] = 0
				}
				if q[j] > 1 {
					q[j] = 1
				}
			}
			if simplex {
				q = gir.SpaceSimplex.Normalize(q)
			}
		}
		if g.Contains(q) {
			out = append(out, q)
		}
	}
	return out
}

func resultIDs(recs []gir.Record) []int64 {
	ids := make([]int64, len(recs))
	for i, r := range recs {
		ids[i] = r.ID
	}
	return ids
}

func sameOrder(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameSet(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[int64]int, len(a))
	for _, id := range a {
		seen[id]++
	}
	for _, id := range b {
		if seen[id] == 0 {
			return false
		}
		seen[id]--
	}
	return true
}

// TestGIRInvariant checks, for every Method, for both GIR and GIR*, and
// in BOTH query-space domains, that queries sampled inside the region
// reproduce the cached result.
func TestGIRInvariant(t *testing.T) {
	for _, space := range []gir.Space{gir.SpaceBox, gir.SpaceSimplex} {
		space := space
		t.Run(space.String(), func(t *testing.T) { runGIRInvariant(t, space) })
	}
}

func runGIRInvariant(t *testing.T, space gir.Space) {
	methods := []gir.Method{gir.SP, gir.CP, gir.FP, gir.Exhaustive}
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 4; trial++ {
		d := 2 + trial%2
		k := 3 + trial*2
		ds, err := gir.NewDatasetInSpace(randomPoints(r, 350, d), space)
		if err != nil {
			t.Fatal(err)
		}
		q := make([]float64, d)
		for j := range q {
			q[j] = 0.2 + 0.6*r.Float64()
		}
		if space == gir.SpaceSimplex {
			q = space.Normalize(q)
		}
		base, err := ds.TopK(q, k)
		if err != nil {
			t.Fatal(err)
		}
		baseIDs := resultIDs(base.Records)

		for _, m := range methods {
			for _, star := range []bool{false, true} {
				res, err := ds.TopK(q, k)
				if err != nil {
					t.Fatal(err)
				}
				var g *gir.GIR
				if star {
					g, err = ds.ComputeGIRStar(res, m)
				} else {
					g, err = ds.ComputeGIR(res, m)
				}
				if err != nil {
					t.Fatalf("trial %d method %v star %v: %v", trial, m, star, err)
				}
				if g.Space() != space {
					t.Fatalf("trial %d method %v: region carries space %v, dataset is %v", trial, m, g.Space(), space)
				}
				if !g.Contains(q) {
					t.Fatalf("trial %d method %v star %v: query outside its own region", trial, m, star)
				}
				for _, q2 := range sampleInside(r, g, 10) {
					fresh, err := ds.TopK(q2, k)
					if err != nil {
						t.Fatal(err)
					}
					freshIDs := resultIDs(fresh.Records)
					if star {
						if !sameSet(baseIDs, freshIDs) {
							t.Fatalf("trial %d method %v GIR*: q'=%v changed result composition: %v vs %v",
								trial, m, q2, freshIDs, baseIDs)
						}
					} else if !sameOrder(baseIDs, freshIDs) {
						t.Fatalf("trial %d method %v GIR: q'=%v changed result: %v vs %v",
							trial, m, q2, freshIDs, baseIDs)
					}
				}
			}
		}
	}
}

// TestGIRInvariantThroughCache closes the loop on the serving stack in
// both domains: a result served from the Cache for an in-region query
// must be byte-identical (ids, attrs, recomputed scores) to a fresh
// sequential TopK.
func TestGIRInvariantThroughCache(t *testing.T) {
	for _, space := range []gir.Space{gir.SpaceBox, gir.SpaceSimplex} {
		space := space
		t.Run(space.String(), func(t *testing.T) { runGIRInvariantThroughCache(t, space) })
	}
}

func runGIRInvariantThroughCache(t *testing.T, space gir.Space) {
	r := rand.New(rand.NewSource(43))
	ds, err := gir.NewDatasetInSpace(randomPoints(r, 500, 3), space)
	if err != nil {
		t.Fatal(err)
	}
	e := gir.NewEngine(ds, gir.EngineOptions{CacheCapacity: 16})
	defer e.Close()
	q := []float64{0.55, 0.4, 0.6}
	if space == gir.SpaceSimplex {
		q = space.Normalize(q)
	}
	const k = 6
	first := e.TopK(q, k)
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	res, err := ds.TopK(q, k)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ds.ComputeGIR(res, gir.FP)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, q2 := range sampleInside(r, g, 12) {
		got := e.TopK(q2, k)
		if got.Err != nil {
			t.Fatal(got.Err)
		}
		if got.CacheHit {
			hits++
		}
		requireIdentical(t, ds, gir.Query{Vector: q2, K: k}, got)
	}
	if hits == 0 {
		t.Error("no in-region query hit the cache")
	}
}
